//! Fault-injection suite: drives every minimization phase through
//! injected faults (worker panics, held-lock panics, allocation spikes,
//! delays) and asserts the run survives with a *verified* form — no lost
//! incumbent, no poisoned lock, no panic crossing the process boundary.
//!
//! Build with `cargo test --features failpoints`. The registry is
//! process-global, so every test serializes itself behind [`registry`]
//! and starts from a clean slate.
//!
//! Site cheat-sheet (where each failpoint fires):
//! - `generate.worker` / `generate.shard`: inside generation worker
//!   threads — isolated by `catch_unwind`, only reached at ≥ 2 threads
//!   (one thread takes the sequential sweep). `generate.shard` fires
//!   *while the shard mutex is held*, so a panic there poisons the lock.
//! - `cover.subtree`: inside branch-and-bound subtree workers — isolated.
//! - `generate.level`, `cover.columns`, `heuristic.descent`: on the
//!   session's own thread — NOT isolated; arm only with `Delay` or
//!   `ChargeBytes`, never `Panic`.

#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use spp::boolfn::BoolFn;
use spp::core::Rung;
use spp::obs::failpoints::{self, FailAction};
use spp::{Minimizer, Outcome};

/// Serializes registry access across tests and clears leftover state. A
/// test that fails while holding the guard poisons this mutex; later
/// tests recover it instead of cascading.
fn registry() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let guard =
        GUARD.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner);
    failpoints::clear_all();
    guard
}

/// A 5-variable function with enough structure that generation runs for
/// several levels and covering has real choices to make.
fn test_fn() -> BoolFn {
    BoolFn::from_truth_fn(5, |x| x % 3 == 1 || x.count_ones() == 4)
}

#[test]
fn generation_worker_panics_are_isolated() {
    let _guard = registry();
    let f = test_fn();
    for threads in [1usize, 2, 4] {
        failpoints::clear_all();
        failpoints::set("generate.worker", FailAction::Panic("injected worker fault".into()));
        let r = Minimizer::new(&f).threads(threads).run_exact();
        r.form.check_realizes(&f).expect("form must stay valid");
        assert_eq!(r.outcome, Outcome::Completed, "threads={threads}");
        if threads == 1 {
            // One thread takes the sequential sweep: no workers to kill.
            assert!(r.faults.is_empty(), "threads=1 has no workers: {:?}", r.faults);
        } else {
            assert!(!r.faults.is_empty(), "threads={threads} must record the panic");
            assert!(
                r.faults.iter().all(|fault| fault.site == "generate.worker"),
                "threads={threads}: {:?}",
                r.faults
            );
            // Killed workers truncate generation, so optimality is waived.
            assert!(!r.optimal, "threads={threads}");
        }
    }
}

#[test]
fn shard_panic_while_holding_the_lock_is_recovered() {
    let _guard = registry();
    let f = test_fn();
    for threads in [2usize, 4] {
        failpoints::clear_all();
        // Let a few unions land, then panic *inside* the held shard lock:
        // the mutex is poisoned mid-insert and every later lock site (other
        // workers, the merge) must recover rather than cascade.
        failpoints::set_after(
            "generate.shard",
            3,
            FailAction::Panic("injected while holding the shard lock".into()),
        );
        let r = Minimizer::new(&f).threads(threads).run_exact();
        r.form.check_realizes(&f).expect("form must stay valid");
        assert_eq!(r.outcome, Outcome::Completed, "threads={threads}");
        assert!(!r.faults.is_empty(), "threads={threads} must record the panic");
        for fault in &r.faults {
            // The catch boundary is the worker, the payload names the site.
            assert_eq!(fault.site, "generate.worker", "threads={threads}");
            assert!(fault.message.contains("generate.shard"), "{:?}", fault);
        }
    }
}

#[test]
fn cover_subtree_panics_keep_the_incumbent() {
    let _guard = registry();
    let f = test_fn();
    for threads in [1usize, 2, 4] {
        failpoints::clear_all();
        failpoints::set("cover.subtree", FailAction::Panic("injected mid-cover".into()));
        let r = Minimizer::new(&f).threads(threads).run_exact();
        // Every subtree dies, but the greedy incumbent survives and covers.
        r.form.check_realizes(&f).expect("incumbent must stay valid");
        assert_eq!(r.outcome, Outcome::Completed, "threads={threads}");
        assert!(
            r.faults.iter().any(|fault| fault.site == "cover.subtree"),
            "threads={threads}: {:?}",
            r.faults
        );
        assert!(!r.optimal, "threads={threads}: lost subtrees waive optimality");
    }
}

#[test]
fn allocation_spike_during_generation_descends_the_ladder() {
    let _guard = registry();
    let f = test_fn();
    // Every generation level "allocates" a terabyte: the exact and
    // restricted rungs (which both run EPPP generation) blow the hard
    // budget, while the heuristic rung never enters that generator and
    // fits comfortably.
    failpoints::set("generate.level", FailAction::ChargeBytes(1 << 40));
    let r = Minimizer::new(&f)
        .threads(2)
        .mem_budget(None, Some(64 * 1024 * 1024))
        .run_governed();
    assert_eq!(r.rung, Rung::Heuristic, "outcome={:?}", r.outcome);
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    r.form.check_realizes(&f).expect("accepted rung must verify");
}

#[test]
fn allocation_spike_during_covering_stops_with_memory_exceeded() {
    let _guard = registry();
    let f = test_fn();
    failpoints::set("cover.columns", FailAction::ChargeBytes(1 << 40));
    let r = Minimizer::new(&f).mem_budget(None, Some(1 << 20)).run_exact();
    // The greedy cover lands before the budget check, so the result is
    // valid — only the exact refinement is abandoned.
    assert_eq!(r.outcome, Outcome::MemoryExceeded);
    assert!(!r.optimal);
    r.form.check_realizes(&f).expect("greedy cover must stay valid");
}

#[test]
fn injected_delay_trips_the_deadline() {
    let _guard = registry();
    let f = test_fn();
    failpoints::set("generate.level", FailAction::Delay(Duration::from_millis(40)));
    let r = Minimizer::new(&f).deadline(Duration::from_millis(5)).run_exact();
    assert_eq!(r.outcome, Outcome::DeadlineExceeded);
    assert!(!r.optimal);
    r.form.check_realizes(&f).expect("best-so-far must stay valid");
}

#[test]
fn heuristic_descent_site_fires_and_respects_the_budget() {
    let _guard = registry();
    let f = test_fn();
    // Unarmed, the site still counts hits: one per descent step.
    let r = Minimizer::new(&f).run_heuristic(2).expect("k in range");
    assert_eq!(failpoints::hits("heuristic.descent"), 2);
    r.form.check_realizes(&f).expect("heuristic form must verify");

    // Armed with an allocation spike, the descent trips the hard budget
    // and the session returns its (valid) seed-based best-so-far.
    failpoints::set("heuristic.descent", FailAction::ChargeBytes(1 << 40));
    let r = Minimizer::new(&f).mem_budget(None, Some(1 << 20)).run_heuristic(2).expect("k in range");
    assert_eq!(r.outcome, Outcome::MemoryExceeded);
    r.form.check_realizes(&f).expect("truncated heuristic must stay valid");
}
