//! Integration tests of the cross-call result cache, end to end through
//! the facade crate: hit fidelity at every thread count, byte-budget
//! eviction, on-disk persistence, corruption handling, don't-care
//! aliasing and covering warm starts.

use std::sync::{Arc, Mutex, PoisonError};

use spp::boolfn::BoolFn;
use spp::core::{CacheConfig, Event, EventSink, SppCache};
use spp::gf2::Gf2Vec;
use spp::prelude::*;

/// Collects every emitted event for later assertions.
#[derive(Default)]
struct Collect(Mutex<Vec<Event>>);

impl Collect {
    fn events(&self) -> Vec<Event> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

impl EventSink for Collect {
    fn emit(&self, event: &Event) {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }
}

/// A fresh per-test scratch directory (removed up front, not behind —
/// a failing test leaves its files for inspection).
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spp-cache-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mid-size 6-variable function: parity-flavoured enough to produce a
/// real EPPP set, irregular enough that covering does actual work.
fn sample_fn() -> BoolFn {
    BoolFn::from_truth_fn(6, |x| x % 5 == 1 || x.count_ones() % 3 == 0)
}

/// A cached answer must be bit-identical to the cold one, at any thread
/// count — the cache key excludes parallelism precisely because results
/// are thread-count invariant.
#[test]
fn cache_hits_are_bit_identical_to_cold_runs_at_any_thread_count() {
    let f = sample_fn();
    let cold = Minimizer::new(&f).run_exact();
    assert!(cold.optimal, "sample function should complete optimally");

    let cache = SppCache::in_memory(16 * 1024 * 1024);
    let warmup = Minimizer::new(&f).cache(cache.clone()).run_exact();
    assert_eq!(warmup.form.terms(), cold.form.terms(), "cached path changed the answer");
    for threads in [1, 2, 4] {
        let hit = Minimizer::new(&f).threads(threads).cache(cache.clone()).run_exact();
        assert_eq!(
            hit.form.terms(),
            cold.form.terms(),
            "x{threads}: cache hit diverged from the cold run"
        );
        assert!(hit.optimal);
        hit.form.check_realizes(&f).expect("cached form must verify");
    }
    let stats = cache.stats();
    assert!(stats.hits >= 3, "expected one hit per thread count, got {stats}");
}

/// A byte budget far below one entry's size forces eviction on every
/// insertion; the cache keeps answering correctly, it just stops keeping.
#[test]
fn tiny_byte_budgets_evict_but_never_corrupt_answers() {
    let cache = SppCache::in_memory(256);
    for seed in 0..4u64 {
        let f = BoolFn::from_truth_fn(5, |x| (x ^ seed).count_ones() % 2 == 0);
        let r = Minimizer::new(&f).cache(cache.clone()).run_exact();
        r.form.check_realizes(&f).expect("form must verify under eviction pressure");
    }
    let stats = cache.stats();
    assert!(stats.evictions > 0, "a 256-byte budget must evict, got {stats}");
    assert_eq!(stats.hits, 0, "nothing fits, so nothing can hit: {stats}");
    assert!(
        stats.bytes <= 256,
        "resident bytes must respect the budget, got {stats}"
    );
}

/// Results persisted by one cache instance answer a completely fresh one
/// — the disk round trip the CLI's `--cache-dir` relies on.
#[test]
fn disk_entries_survive_across_cache_instances() {
    let dir = scratch("round-trip");
    let f = sample_fn();
    let cold = {
        let cache = SppCache::new(CacheConfig::default().with_dir(&dir));
        Minimizer::new(&f).cache(cache.clone()).run_exact()
    };

    let cache = SppCache::new(CacheConfig::default().with_dir(&dir));
    let sink = Arc::new(Collect::default());
    let warm = Minimizer::new(&f).cache(cache.clone()).on_event(sink.clone()).run_exact();
    assert_eq!(warm.form.terms(), cold.form.terms());
    let stats = cache.stats();
    assert!(stats.disk_hits >= 1, "fresh instance must load from disk: {stats}");
    assert!(
        sink.events().iter().any(|e| matches!(e, Event::CacheHit { disk: true, .. })),
        "a disk hit must be observable as an event"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted on-disk entry is skipped with a typed event and the
/// answer is recomputed — never trusted, never fatal.
#[test]
fn corrupt_disk_entries_are_skipped_with_a_typed_event() {
    let dir = scratch("corrupt");
    let f = sample_fn();
    let cold = {
        let cache = SppCache::new(CacheConfig::default().with_dir(&dir));
        Minimizer::new(&f).cache(cache.clone()).run_exact()
    };
    // Flip one payload byte in every persisted entry.
    let mut files = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("readable dir entry").path();
        let mut bytes = std::fs::read(&path).expect("readable entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, bytes).expect("writable entry");
        files += 1;
    }
    assert!(files >= 1, "the cold run must have persisted something");

    let cache = SppCache::new(CacheConfig::default().with_dir(&dir));
    let sink = Arc::new(Collect::default());
    let recomputed =
        Minimizer::new(&f).cache(cache.clone()).on_event(sink.clone()).run_exact();
    assert_eq!(recomputed.form.terms(), cold.form.terms(), "recomputation must match");
    let stats = cache.stats();
    assert!(stats.corrupt_skipped >= 1, "corruption must be counted: {stats}");
    assert!(
        sink.events()
            .iter()
            .any(|e| matches!(e, Event::CacheCorruptEntry { reason, .. } if reason == "checksum")),
        "a checksum rejection must surface as a typed event"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two functions with the same ON-set but different don't-care sets must
/// never alias: the don't-care mask is part of the fingerprint, and the
/// minimizer is free to cover don't-cares differently.
#[test]
fn dont_care_masks_never_alias() {
    let n = 5;
    let on: Vec<Gf2Vec> = [1u64, 2, 4, 8].iter().map(|&i| Gf2Vec::from_u64(n, i)).collect();
    let plain = BoolFn::with_dont_cares(n, on.clone(), []);
    let with_dc = BoolFn::with_dont_cares(
        n,
        on,
        (16..32u64).map(|i| Gf2Vec::from_u64(n, i)).collect::<Vec<_>>(),
    );

    let cache = SppCache::in_memory(16 * 1024 * 1024);
    let r_plain = Minimizer::new(&plain).cache(cache.clone()).run_exact();
    let r_dc = Minimizer::new(&with_dc).cache(cache.clone()).run_exact();
    r_plain.form.check_realizes(&plain).expect("plain form verifies");
    r_dc.form.check_realizes(&with_dc).expect("dc form verifies");
    // The second run must not have answered from the first one's entries:
    // every lookup for `with_dc` misses.
    assert_eq!(cache.stats().hits, 0, "dc-mask change must be a different key");

    // And a repeat of each function still hits its own entry.
    let again = Minimizer::new(&with_dc).cache(cache.clone()).run_exact();
    assert_eq!(again.form.terms(), r_dc.form.terms());
    assert!(cache.stats().hits >= 1);
}

/// A cached result under one set of covering limits warm-starts the
/// search when the limits change: the result key misses, the sibling
/// entry seeds the branch-and-bound incumbent, and the event stream says
/// so.
#[test]
fn changed_cover_limits_warm_start_from_a_sibling_entry() {
    let f = sample_fn();
    let cache = SppCache::in_memory(16 * 1024 * 1024);
    let first = Minimizer::new(&f).cache(cache.clone()).run_exact();
    assert!(first.optimal);

    let sink = Arc::new(Collect::default());
    let second = Minimizer::new(&f)
        .cache(cache.clone())
        .cover_limits(spp::cover::Limits::default().with_max_nodes(50_000))
        .on_event(sink.clone())
        .run_exact();
    second.form.check_realizes(&f).expect("warm-started form verifies");
    let stats = cache.stats();
    assert!(stats.warm_starts >= 1, "expected a warm start: {stats}");
    assert!(
        sink.events().iter().any(|e| matches!(e, Event::CacheWarmStart { columns } if *columns > 0)),
        "warm start must surface as an event"
    );
    // Same function, same candidate set: the warm-started answer can
    // never be worse than the cached optimum's literal count.
    assert!(second.form.literal_count() <= first.form.literal_count());
}

/// The whole-run stats line the CLI prints: every counter is consistent
/// with what the run actually did.
#[test]
fn multi_output_sessions_cache_and_report_consistently() {
    let outputs: Vec<BoolFn> = (0..3u64)
        .map(|j| BoolFn::from_truth_fn(5, move |x| (x >> j) & 1 == 1 && x % 3 == 0))
        .collect();
    let cache = SppCache::in_memory(16 * 1024 * 1024);
    let cold = MultiMinimizer::new(&outputs).cache(cache.clone()).run().expect("multi runs");
    let after_cold = cache.stats();
    assert!(after_cold.insertions >= 1, "multi results must be cached: {after_cold}");

    let warm = MultiMinimizer::new(&outputs).cache(cache.clone()).run().expect("multi runs");
    for (a, b) in cold.forms.iter().zip(&warm.forms) {
        assert_eq!(a.terms(), b.terms(), "cached multi result diverged");
    }
    let stats = cache.stats();
    assert!(stats.hits > after_cold.hits, "the re-run must hit: {stats}");
    assert_eq!(stats.corrupt_skipped, 0);
}
