//! Golden regression tests: the benchmark rows where this implementation
//! reproduces the paper's published numbers *exactly* (same function, same
//! optimum). If any of these move, either the generators or the
//! minimizers changed behaviour.

use spp::benchgen::registry;
use spp::core::{Minimizer, SppOptions};
use spp::cover::Limits;
use spp::sp::minimize_sp;

fn options() -> SppOptions {
    SppOptions::default().with_cover_limits(
        Limits::default()
            .with_max_nodes(500_000)
            .with_time_limit(Some(std::time::Duration::from_secs(5)))
            .with_max_exact_columns(20_000),
    )
}

/// Paper Table 1, adr4 row (SP side): #PI = 75, #L = 340, #P = 75.
#[test]
fn adr4_sp_matches_paper_exactly() {
    let c = registry::circuit("adr4").unwrap();
    let mut num_primes = 0;
    let mut literals = 0;
    let mut products = 0;
    for j in 0..c.outputs().len() {
        let f = c.output_on_support(j);
        let r = minimize_sp(&f, &Limits::default());
        assert!(r.optimal, "output {j} must solve exactly");
        num_primes += r.num_primes;
        literals += r.literal_count();
        products += r.form.num_products();
    }
    assert_eq!(num_primes, 75, "paper: #PI = 75");
    assert_eq!(literals, 340, "paper: #L = 340");
    assert_eq!(products, 75, "paper: #P = 75");
}

/// Paper Table 1, adr4 row (SPP side): #L = 72 — the 4.72x headline.
#[test]
fn adr4_spp_matches_paper_exactly() {
    let c = registry::circuit("adr4").unwrap();
    let mut literals = 0;
    for j in 0..c.outputs().len() {
        let f = c.output_on_support(j);
        let r = Minimizer::new(&f).options(options()).run_exact();
        literals += r.literal_count();
    }
    assert_eq!(literals, 72, "paper: SPP #L = 72 (340/72 = 4.72x)");
}

/// Paper Table 1, life row (SP side): #PI = 224, #L = 672, #P = 84.
#[test]
fn life_sp_matches_paper_exactly() {
    let f = registry::circuit("life").unwrap().output_on_support(0);
    let r = minimize_sp(&f, &Limits::default());
    assert_eq!(r.num_primes, 224, "paper: #PI = 224");
    assert_eq!(r.literal_count(), 672, "paper: #L = 672");
    assert_eq!(r.form.num_products(), 84, "paper: #P = 84");
}

/// Paper Table 1, root row (SP side): #PI = 133, #L = 346, #P = 71.
#[test]
fn root_sp_matches_paper_exactly() {
    let c = registry::circuit("root").unwrap();
    let mut num_primes = 0;
    let mut literals = 0;
    let mut products = 0;
    for j in 0..c.outputs().len() {
        let f = c.output_on_support(j);
        if f.num_vars() == 0 {
            continue;
        }
        let r = minimize_sp(&f, &Limits::default());
        num_primes += r.num_primes;
        literals += r.literal_count();
        products += r.form.num_products();
    }
    assert_eq!(num_primes, 133, "paper: #PI = 133");
    assert_eq!(literals, 346, "paper: #L = 346");
    assert_eq!(products, 71, "paper: #P = 71");
}

/// Paper Table 1, mlp4 row (SP #PI): 206 prime implicants.
#[test]
fn mlp4_prime_count_matches_paper() {
    let c = registry::circuit("mlp4").unwrap();
    let total: usize = (0..c.outputs().len())
        .map(|j| {
            let f = c.output_on_support(j);
            if f.num_vars() == 0 {
                0
            } else {
                spp::sp::prime_implicants(&f).len()
            }
        })
        .sum();
    assert_eq!(total, 206, "paper: mlp4 #PI = 206");
}

/// radd is the same function as adr4 (the paper's rows are identical on
/// the SP side and nearly identical on the EPPP side).
#[test]
fn radd_equals_adr4() {
    let a = registry::circuit("adr4").unwrap();
    let r = registry::circuit("radd").unwrap();
    assert_eq!(a.outputs(), r.outputs());
}
