//! Ground-truth tests against brute force on tiny spaces: enumerate *every*
//! pseudocube of `B^n` (all 2^(2^n) point subsets for n ≤ 4), compute the
//! true minimum-literal SPP cover with the exact covering solver, and
//! check the library's Algorithm 2 pipeline reaches the same optimum.

use spp::core::{Grouping, Minimizer, Pseudocube, SppOptions};
use spp::cover::{solve_exact, CoverProblem, Limits};
use spp::gf2::Gf2Vec;
use spp::prelude::*;

/// All pseudocubes contained in `f`'s ON-set, by brute force over every
/// subset of the ON-set points (valid for tiny ON-sets only).
fn all_pseudocubes_within(f: &BoolFn) -> Vec<Pseudocube> {
    let on = f.on_set();
    assert!(on.len() <= 16, "brute force needs a tiny ON-set");
    let mut out = Vec::new();
    for mask in 1u32..(1 << on.len()) {
        if !mask.count_ones().is_power_of_two() {
            continue; // pseudocubes have 2^m points
        }
        let points: Vec<Gf2Vec> =
            (0..on.len()).filter(|i| mask >> i & 1 == 1).map(|i| on[i]).collect();
        if let Some(pc) = Pseudocube::from_points(&points) {
            out.push(pc);
        }
    }
    out
}

/// The true minimum SPP literal count of `f`, via exhaustive candidates
/// and a fully exact cover.
fn brute_force_optimum(f: &BoolFn) -> u64 {
    let candidates = all_pseudocubes_within(f);
    let on = f.on_set();
    if on.is_empty() {
        return 0;
    }
    let mut problem = CoverProblem::new(on.len());
    for pc in &candidates {
        let rows: Vec<usize> = on
            .iter()
            .enumerate()
            .filter(|(_, p)| pc.contains(p))
            .map(|(i, _)| i)
            .collect();
        problem.add_column(&rows, pc.literal_count().max(1));
    }
    let limits = Limits::default()
        .with_max_nodes(u64::MAX)
        .with_time_limit(None)
        .with_max_exact_columns(usize::MAX);
    let solution = solve_exact(&problem, &limits, None);
    assert!(solution.optimal, "brute force cover must be exact");
    solution
        .columns
        .iter()
        .map(|&c| candidates[c].literal_count().max(1))
        .sum()
}

#[test]
fn algorithm2_reaches_the_true_optimum_on_all_3var_functions() {
    // All 255 non-zero functions on 3 variables.
    let options = SppOptions::default().with_cover_limits(
        Limits::default()
            .with_max_nodes(u64::MAX)
            .with_time_limit(None)
            .with_max_exact_columns(usize::MAX),
    );
    for tt in 1u16..=255 {
        let f = BoolFn::from_truth_fn(3, |x| tt >> x & 1 == 1);
        let ours = Minimizer::new(&f).options(options.clone()).run_exact();
        assert!(ours.optimal, "tt={tt:#010b} must solve exactly");
        let truth = brute_force_optimum(&f);
        // The tautology is the empty pseudoproduct: cover cost is clamped
        // to 1, literal count is 0; align the accounting.
        let ours_cost: u64 = ours.form.terms().iter().map(|t| t.literal_count().max(1)).sum();
        assert_eq!(
            ours_cost, truth,
            "tt={tt:#010b}: algorithm2 found {ours_cost}, brute force {truth}"
        );
    }
}

#[test]
fn algorithm2_reaches_the_true_optimum_on_sampled_4var_functions() {
    let options = SppOptions::default().with_cover_limits(
        Limits::default()
            .with_max_nodes(u64::MAX)
            .with_time_limit(None)
            .with_max_exact_columns(usize::MAX),
    );
    // A deterministic sample of 4-variable functions with ≤ 9 minterms
    // (brute force enumerates subsets of the ON-set).
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut tried = 0;
    while tried < 25 {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let tt = (seed & 0xFFFF) as u16;
        let f = BoolFn::from_truth_fn(4, |x| tt >> x & 1 == 1);
        if f.on_set().is_empty() || f.on_set().len() > 9 {
            continue;
        }
        tried += 1;
        let ours = Minimizer::new(&f).options(options.clone()).run_exact();
        assert!(ours.optimal);
        let ours_cost: u64 = ours.form.terms().iter().map(|t| t.literal_count().max(1)).sum();
        assert_eq!(ours_cost, brute_force_optimum(&f), "tt={tt:#018b}");
    }
}

#[test]
fn eppp_set_dominates_every_pseudocube() {
    // Definition 3 (operational): for every pseudocube P ⊆ F there is a
    // retained candidate covering P with no more literals — so restricting
    // the covering to EPPPs loses nothing.
    for tt in [0x96u16, 0x3C, 0xE8, 0x57, 0xAB] {
        let f = BoolFn::from_truth_fn(3, |x| tt >> x & 1 == 1);
        let eppp = Minimizer::new(&f).grouping(Grouping::PartitionTrie).generate();
        for pc in all_pseudocubes_within(&f) {
            let dominated = eppp
                .pseudocubes
                .iter()
                .any(|e| e.covers(&pc) && e.literal_count() <= pc.literal_count());
            assert!(
                dominated,
                "tt={tt:#x}: pseudocube {pc:?} ({} literals) has no EPPP dominator",
                pc.literal_count()
            );
        }
    }
}

#[test]
fn generation_finds_exactly_the_pseudocubes_of_f() {
    // The union process generates every pseudocube ⊆ F (all degrees), no
    // more, no less: compare the full generated universe against brute
    // force on a couple of functions.
    for tt in [0x96u16, 0x7E, 0x1B] {
        let f = BoolFn::from_truth_fn(3, |x| tt >> x & 1 == 1);
        // Re-derive the generated universe from level stats: retained is a
        // subset; instead generate with a filter that retains everything.
        let eppp = Minimizer::new(&f)
            .grouping(Grouping::PartitionTrie)
            .generate_where(&|_| true);
        // Retained ⊆ all pseudocubes within f.
        let universe: std::collections::HashSet<Pseudocube> =
            all_pseudocubes_within(&f).into_iter().collect();
        for pc in &eppp.pseudocubes {
            assert!(universe.contains(pc), "tt={tt:#x}: generated {pc:?} not within f");
        }
    }
}
