//! End-to-end tests of the `spp` command-line binary.

use std::process::Command;

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

fn write_pla(name: &str, text: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("spp-cli-test-{name}.pla"));
    std::fs::write(&path, text).expect("temp file writable");
    path
}

#[test]
fn list_names_benchmarks() {
    let out = spp().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("adr4: 8 inputs, 5 outputs"));
    assert!(text.contains("life: 9 inputs, 1 outputs"));
}

#[test]
fn minimize_pla_to_spp() {
    let path = write_pla("xor", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let out = spp().arg("minimize").arg(&path).output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SPP 2 literals, 1 terms"), "{text}");
    assert!(text.contains("(x0⊕x1)"), "{text}");
}

#[test]
fn sp_flag_switches_to_two_level() {
    let path = write_pla("xor-sp", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let out = spp().arg("minimize").arg(&path).arg("--sp").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SP 4 literals, 2 terms"), "{text}");
}

#[test]
fn verilog_emission_contains_module() {
    let path = write_pla("xor-v", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let out = spp()
        .arg("minimize")
        .arg(&path)
        .arg("--quiet")
        .arg("--verilog")
        .arg("parity")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("module parity"), "{text}");
    assert!(text.contains("^"), "{text}");
    assert!(text.contains("endmodule"), "{text}");
}

#[test]
fn blif_emission_contains_model() {
    let path = write_pla("xor-b", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let out = spp()
        .arg("minimize")
        .arg(&path)
        .arg("--quiet")
        .arg("--blif")
        .arg("parity")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".model parity"), "{text}");
    assert!(text.contains(".end"), "{text}");
}

#[test]
fn bench_subcommand_minimizes_builtin() {
    let out = spp()
        .arg("bench")
        .arg("adr4")
        .arg("--heuristic")
        .arg("0")
        .arg("--quiet")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("adr4[0]"), "{text}");
    assert!(text.contains("adr4[4]"), "{text}");
}

#[test]
fn unknown_benchmark_fails_with_hint() {
    let out = spp().arg("bench").arg("nope").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown benchmark"), "{err}");
}

#[test]
fn bad_usage_fails() {
    let out = spp().output().expect("binary runs");
    assert!(!out.status.success());
    let out = spp().arg("minimize").output().expect("binary runs");
    assert!(!out.status.success());
    let out = spp().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn deadline_flag_degrades_gracefully() {
    // An already-expired deadline: the run must still exit successfully
    // with a verified best-so-far form (verification failure would exit
    // non-zero) and report the outcome on the summary line.
    let out = spp()
        .arg("bench")
        .arg("life")
        .arg("--deadline-ms")
        .arg("0")
        .arg("--quiet")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[deadline_exceeded]"), "{text}");
}

#[test]
fn progress_flag_prints_events_to_stderr() {
    let path = write_pla("xor-progress", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let out = spp()
        .arg("minimize")
        .arg(&path)
        .arg("--progress")
        .arg("--quiet")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("spp: "), "{err}");
    assert!(err.contains("generate"), "{err}");
    // The summary line itself is untouched by run control.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SPP 2 literals, 1 terms"), "{text}");
}

#[test]
fn events_json_flag_writes_a_jsonl_trace() {
    let path = write_pla("xor-events", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let trace = std::env::temp_dir().join("spp-cli-test-events.jsonl");
    let out = spp()
        .arg("minimize")
        .arg(&path)
        .arg("--events-json")
        .arg(&trace)
        .arg("--quiet")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(body.lines().count() >= 2, "{body}");
    for line in body.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON line: {line}");
    }
    assert!(body.contains("\"phase_finished\""), "{body}");
    assert!(body.contains("\"outcome\":\"completed\""), "{body}");
}

#[test]
fn threads_flag_wins_over_env() {
    // SPP_THREADS asks for 4 workers; --threads 1 must take precedence
    // (results are thread-invariant, so success + identical output to the
    // sequential default is the observable).
    let path = write_pla("xor-threads", ".i 2\n.o 1\n01 1\n10 1\n.e\n");
    let with_flag = spp()
        .arg("minimize")
        .arg(&path)
        .arg("--threads")
        .arg("1")
        .env("SPP_THREADS", "4")
        .output()
        .expect("binary runs");
    assert!(with_flag.status.success());
    let plain = spp().arg("minimize").arg(&path).output().expect("binary runs");
    assert_eq!(with_flag.stdout, plain.stdout);
}

#[test]
fn multi_flag_reports_sharing() {
    let path = write_pla(
        "multi",
        ".i 3\n.o 2\n001 10\n010 10\n100 11\n111 11\n.e\n",
    );
    let out = spp().arg("minimize").arg(&path).arg("--multi").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("multi-output SPP"), "{text}");
    assert!(text.contains("shared literals"), "{text}");
}
