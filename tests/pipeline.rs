//! Cross-crate integration tests: PLA parsing → SP → SPP pipelines,
//! heuristic vs exact agreement, grouping-strategy equivalence and the
//! benchmark registry.

use std::collections::HashSet;

use spp::benchgen::registry;
use spp::core::{GenLimits, Grouping, Minimizer, Pseudocube, SppOptions};
use spp::prelude::*;
use spp::sp::minimize_sp;

#[test]
fn pla_to_spp_pipeline() {
    // The 2-bit equality comparator: SPP collapses it to one pseudoproduct.
    let text = "\
.i 4
.o 1
.p 4
0000 1
1010 1
0101 1
1111 1
.e
";
    let pla: Pla = text.parse().unwrap();
    let f = pla.output_fn(0);
    let r = Minimizer::new(&f).run_exact();
    r.form.check_realizes(&f).unwrap();
    assert_eq!(r.form.num_pseudoproducts(), 1);
    assert_eq!(r.literal_count(), 4); // (x0⊕x̄2)·(x1⊕x̄3)
    let sp = minimize_sp(&f, &spp::cover::Limits::default());
    assert_eq!(sp.literal_count(), 16); // four disjoint minterms
}

#[test]
fn groupings_generate_identical_eppp_sets_on_benchmarks() {
    // life's single output restricted to a slice keeps this fast.
    let life = registry::circuit("life").unwrap();
    let f = life.output(0).cofactor_slice(&[0, 1, 2, 3, 8], &spp::gf2::Gf2Vec::zeros(9));
    let eppp_with = |grouping| -> HashSet<_> {
        Minimizer::new(&f).grouping(grouping).generate().pseudocubes.into_iter().collect()
    };
    let trie = eppp_with(Grouping::PartitionTrie);
    let hash = eppp_with(Grouping::HashMap);
    let quad = eppp_with(Grouping::Quadratic);
    assert_eq!(trie, hash);
    assert_eq!(trie, quad);
}

#[test]
fn heuristic_full_depth_matches_exact_on_benchmark_slices() {
    let adr4 = registry::circuit("adr4").unwrap();
    let f = adr4.output_on_support(2); // 6 inputs, 32 minterms
    let session = Minimizer::new(&f);
    let exact = session.run_exact();
    assert!(exact.optimal, "slice should be solvable exactly");
    let full = session.run_heuristic(f.num_vars() - 1).unwrap();
    assert_eq!(full.literal_count(), exact.literal_count());
    let quick = session.run_heuristic(0).unwrap();
    assert!(quick.literal_count() >= exact.literal_count());
    quick.form.check_realizes(&f).unwrap();
}

#[test]
fn spp_never_exceeds_sp_even_under_tiny_budgets() {
    // Squeeze generation so hard it truncates: the SP fallback must hold
    // the "worst case SP and SPP coincide" guarantee.
    let c = registry::circuit("newtpla2").unwrap();
    let options = SppOptions::default().with_gen_limits(
        GenLimits::default()
            .with_max_pseudocubes(50)
            .with_max_level_size(30)
            .with_time_limit(None),
    );
    for j in 0..c.outputs().len() {
        let f = c.output_on_support(j);
        if f.is_zero() || f.num_vars() == 0 {
            continue;
        }
        let spp = Minimizer::new(&f).options(options.clone()).run_exact();
        spp.form.check_realizes(&f).unwrap();
        let sp = minimize_sp(&f, &options.cover_limits);
        assert!(
            spp.literal_count() <= sp.literal_count(),
            "output {j}: SPP {} > SP {}",
            spp.literal_count(),
            sp.literal_count()
        );
    }
}

#[test]
fn adder_sum_bits_are_pure_parities() {
    // Sum bit k of a + b (no carry-in) restricted to bit 0 is a0 ⊕ b0:
    // the SPP form of output 0 must be a single 2-literal pseudoproduct.
    let adr4 = registry::circuit("adr4").unwrap();
    let f = adr4.output_on_support(0);
    let r = Minimizer::new(&f).run_exact();
    assert_eq!(r.literal_count(), 2);
    assert_eq!(r.form.num_pseudoproducts(), 1);
}

#[test]
fn every_registered_benchmark_minimizes_one_output() {
    // Smoke: first output of each benchmark, under harsh budgets, must
    // produce a verified form.
    let options = SppOptions::default().with_gen_limits(
        GenLimits::default()
            .with_max_pseudocubes(2_000)
            .with_max_level_size(1_500)
            .with_time_limit(Some(std::time::Duration::from_secs(2))),
    );
    for name in registry::ALL_NAMES {
        let c = registry::circuit(name).unwrap();
        let f = c.output_on_support(0);
        if f.is_zero() || f.num_vars() == 0 {
            continue;
        }
        let r = Minimizer::new(&f).options(options.clone()).run_exact();
        r.form
            .check_realizes(&f)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn sp_form_is_a_valid_spp_form() {
    // Cross-crate bridge: SP products convert to pseudocubes and the
    // resulting SppForm verifies against the same function.
    let f = BoolFn::from_truth_fn(5, |x| x % 7 == 3 || x % 5 == 1);
    let sp = minimize_sp(&f, &spp::cover::Limits::default());
    let as_spp = spp::core::SppForm::new(
        5,
        sp.form.cubes().iter().map(Pseudocube::from_cube).collect(),
    );
    as_spp.check_realizes(&f).unwrap();
    assert_eq!(as_spp.literal_count(), sp.literal_count());
}

#[test]
fn pla_roundtrip_preserves_functions() {
    let text = ".i 3\n.o 2\n.p 3\n1-0 10\n011 11\n-11 01\n.e\n";
    let pla: Pla = text.parse().unwrap();
    let again: Pla = pla.to_pla_string().parse().unwrap();
    assert_eq!(pla.output_fns(), again.output_fns());
}
