//! Integration tests of the synthesis-to-netlist pipeline: benchmark →
//! minimized form → gate network → BLIF/Verilog → (BLIF) → equivalence.

use spp::benchgen::registry;
use spp::core::{Minimizer, MultiMinimizer};
use spp::netlist::Netlist;
use spp::sp::minimize_sp;

#[test]
fn spp_netlists_of_benchmarks_verify_by_simulation() {
    for (name, j) in [("adr4", 2), ("root", 1), ("cmp3", 1), ("b2g5", 0), ("maj5", 0)] {
        let c = registry::circuit(name).unwrap();
        let f = c.output_on_support(j);
        let r = Minimizer::new(&f).run_exact();
        let net = Netlist::from_spp_form(&r.form);
        assert!(net.equivalent_to_fast(&f, 0), "{name}({j})");
        assert!(net.depth() <= 3, "{name}({j}) depth {}", net.depth());
    }
}

#[test]
fn blif_roundtrip_preserves_benchmark_outputs() {
    for (name, j) in [("adr4", 1), ("dist", 0), ("cmp2", 1)] {
        let c = registry::circuit(name).unwrap();
        let f = c.output_on_support(j);
        let r = Minimizer::new(&f).run_exact();
        let net = Netlist::from_spp_form(&r.form);
        let text = net.to_blif(name);
        let parsed = Netlist::from_blif(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(parsed.equivalent_to_fast(&f, 0), "{name}({j}) BLIF roundtrip");
    }
}

#[test]
fn two_spp_netlists_have_bounded_exor_fanin() {
    let c = registry::circuit("adr4").unwrap();
    let f = c.output_on_support(3);
    let r = Minimizer::new(&f).run_restricted(2).unwrap();
    r.form.check_realizes(&f).unwrap();
    // Every EXOR factor of every term has at most 2 literals.
    for term in r.form.terms() {
        for factor in term.cex().factors() {
            assert!(factor.literal_count() <= 2, "factor {factor} too wide");
        }
    }
    let net = Netlist::from_spp_form(&r.form);
    assert!(net.equivalent_to_fast(&f, 0));
}

#[test]
fn multi_output_netlist_of_gray_converter_is_tiny() {
    // binary→Gray: n−1 XOR gates + 1 wire; sharing cannot help further
    // but the netlist must stay linear in n.
    let c = registry::circuit("b2g5").unwrap();
    let outputs = c.outputs().to_vec();
    let r = MultiMinimizer::new(&outputs).run().unwrap();
    let net = Netlist::from_spp_forms(&r.forms);
    for (j, f) in outputs.iter().enumerate() {
        assert!(net.equivalent_to_fast(f, j), "output {j}");
    }
    assert!(net.gate_count() <= 6, "expected ~4 XORs, got {}", net.gate_count());
    assert_eq!(net.depth(), 1);
}

#[test]
fn sp_and_spp_netlists_agree_with_each_other() {
    let c = registry::circuit("mux4").unwrap();
    let f = c.output_on_support(0);
    let sp = minimize_sp(&f, &spp::cover::Limits::default());
    let spp = Minimizer::new(&f).run_exact();
    let sp_net = Netlist::from_sp_form(&sp.form);
    let spp_net = Netlist::from_spp_form(&spp.form);
    for x in 0..(1u64 << f.num_vars()) {
        let p = spp::gf2::Gf2Vec::from_u64(f.num_vars(), x);
        assert_eq!(sp_net.eval(&p), spp_net.eval(&p), "point {x}");
    }
}

#[test]
fn verilog_mentions_every_input_and_output() {
    let c = registry::circuit("cmp2").unwrap();
    let forms: Vec<_> = (0..3)
        .map(|j| Minimizer::new(c.output(j)).run_exact().form)
        .collect();
    let net = Netlist::from_spp_forms(&forms);
    let v = net.to_verilog("cmp2");
    for i in 0..4 {
        assert!(v.contains(&format!("input x{i};")), "missing input x{i}");
    }
    for j in 0..3 {
        assert!(v.contains(&format!("output f{j};")), "missing output f{j}");
    }
}
