//! End-to-end kernel-backend equivalence: the SIMD dispatch layer must be
//! invisible in every result. A full minimization under `Backend::Scalar`
//! and under the auto-detected SIMD backend must produce bit-identical
//! forms and identical search-effort counters at 1, 2 and 4 threads —
//! the cross-backend extension of the thread-count determinism guarantee.
//!
//! The backend is flipped in-process with [`spp::kernels::set_backend`]
//! (the `SPP_KERNEL` environment variable is only read once per process),
//! which is exactly the test surface that function exists for.

use spp::benchgen::registry;
use spp::core::{GenLimits, Minimizer, Parallelism, SppMinResult, SppOptions};
use spp::cover::Limits;
use spp::kernels::Backend;

fn minimize(name: &str, output: usize, threads: usize) -> SppMinResult {
    let f = registry::circuit(name).unwrap().output_on_support(output);
    let options = SppOptions::default().with_cover_limits(
        Limits::default()
            .with_max_nodes(100_000)
            .with_time_limit(Some(std::time::Duration::from_secs(10))),
    );
    Minimizer::new(&f)
        .options(options)
        .limits(GenLimits::default().with_parallelism(Parallelism::fixed(threads)))
        .run_exact()
}

#[test]
fn scalar_and_simd_backends_minimize_bit_identically() {
    let simd = Backend::detect();
    if simd == Backend::Scalar {
        eprintln!("no SIMD backend on this CPU; cross-backend test is vacuous");
        return;
    }
    for (name, output) in [("life", 0), ("adr4", 3)] {
        for threads in [1usize, 2, 4] {
            spp::kernels::set_backend(Backend::Scalar).unwrap();
            let scalar = minimize(name, output, threads);
            spp::kernels::set_backend(simd).unwrap();
            let vectored = minimize(name, output, threads);
            assert_eq!(
                scalar.form, vectored.form,
                "{name}({output}) form diverged across backends at {threads} threads"
            );
            assert_eq!(
                scalar.gen_stats.comparisons, vectored.gen_stats.comparisons,
                "{name}({output}) comparison count diverged at {threads} threads"
            );
            assert_eq!(
                scalar.num_candidates, vectored.num_candidates,
                "{name}({output}) EPPP count diverged at {threads} threads"
            );
            assert_eq!(scalar.optimal, vectored.optimal);
            assert_eq!(scalar.literal_count(), vectored.literal_count());
        }
    }
    // Leave the process-wide backend as detection would have picked it.
    spp::kernels::set_backend(Backend::detect()).unwrap();
}
