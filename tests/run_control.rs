//! Integration tests of the run-control subsystem: deadlines,
//! deterministic cancellation and the [`SppError`] surface, end to end
//! through the facade crate.

use std::time::{Duration, Instant};

use spp::benchgen::registry;
use spp::core::CancelToken;
use spp::prelude::*;

/// An already-expired deadline must stop every phase promptly and still
/// yield a *verified* form for every registry benchmark — the degraded
/// result is valid, never garbage.
#[test]
fn zero_deadline_yields_valid_forms_on_every_benchmark() {
    for name in registry::ALL_NAMES {
        let c = registry::circuit(name).unwrap();
        let f = c.output_on_support(0);
        if f.is_zero() || f.num_vars() == 0 {
            continue;
        }
        let start = Instant::now();
        let r = Minimizer::new(&f).deadline(Duration::ZERO).run_exact();
        let elapsed = start.elapsed();
        assert_eq!(
            r.outcome,
            Outcome::DeadlineExceeded,
            "{name}: an expired deadline must be reported"
        );
        assert!(!r.optimal, "{name}: a cut-short run can never claim optimality");
        r.form
            .check_realizes(&f)
            .unwrap_or_else(|e| panic!("{name}: best-so-far form invalid: {e}"));
        // "Promptly" allows the SP fallback that guarantees validity, but
        // not a full exact run on the hard benchmarks.
        assert!(
            elapsed < Duration::from_secs(20),
            "{name}: expired deadline took {elapsed:?} to unwind"
        );
    }
}

/// A fuse-armed token trips at a *counted* checkpoint, and counted
/// checkpoints happen at the same algorithmic points at any thread count —
/// so the cancelled best-so-far result is bit-identical across thread
/// counts.
#[test]
fn counted_cancellation_is_thread_count_invariant() {
    let f = registry::circuit("adr4").unwrap().output_on_support(2);
    let run = |threads: usize| {
        let r = Minimizer::new(&f)
            .threads(threads)
            .cancel_token(CancelToken::cancel_after_checkpoints(2))
            .run_exact();
        assert_eq!(r.outcome, Outcome::Cancelled, "x{threads}");
        r.form.check_realizes(&f).unwrap_or_else(|e| panic!("x{threads}: {e}"));
        r.form
    };
    let baseline = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), baseline, "cancelled form diverged at x{threads}");
    }
}

/// The heuristic under a cancelled token also unwinds to a valid form.
#[test]
fn cancelled_heuristic_still_realizes_f() {
    let f = registry::circuit("life").unwrap().output_on_support(0);
    let token = CancelToken::new();
    token.cancel();
    let r = Minimizer::new(&f).cancel_token(token).run_heuristic(1).unwrap();
    assert_eq!(r.outcome, Outcome::Cancelled);
    r.form.check_realizes(&f).unwrap();
}

/// Outcome identifiers round-trip (they are part of the JSON baseline
/// schema, so their spelling is load-bearing).
#[test]
fn outcome_identifiers_round_trip() {
    for o in [Outcome::Completed, Outcome::DeadlineExceeded, Outcome::Cancelled] {
        assert_eq!(Outcome::parse(&o.to_string()), Some(o));
    }
    assert_eq!(Outcome::parse("nonsense"), None);
    assert_eq!(
        Outcome::Completed.merge(Outcome::DeadlineExceeded),
        Outcome::DeadlineExceeded
    );
    assert_eq!(Outcome::DeadlineExceeded.merge(Outcome::Cancelled), Outcome::Cancelled);
}

/// Every contract violation surfaces as a typed [`SppError`] whose
/// message keeps the old panic wording.
#[test]
fn spp_errors_are_typed_and_well_worded() {
    let f = BoolFn::from_truth_fn(3, |x| x != 0);
    let e = Minimizer::new(&f).run_heuristic(7).unwrap_err();
    assert!(matches!(e, SppError::HeuristicK { k: 7, n: 3 }), "{e:?}");
    assert!(e.to_string().contains("must satisfy"), "{e}");

    let e = Minimizer::new(&f).run_restricted(0).unwrap_err();
    assert!(matches!(e, SppError::ZeroFactorWidth));
    assert!(e.to_string().contains("at least one literal"), "{e}");

    let e = MultiMinimizer::new(&[]).run().unwrap_err();
    assert!(matches!(e, SppError::NoOutputs));
    assert!(e.to_string().contains("at least one output"), "{e}");

    let g = BoolFn::from_truth_fn(4, |x| x == 1);
    let e = MultiMinimizer::new(&[f.clone(), g]).run().unwrap_err();
    assert!(matches!(e, SppError::MixedVariableCounts { expected: 3, found: 4 }));
    assert!(e.to_string().contains("share the input variables"), "{e}");

    let e = spp::core::parse_pla("not a pla").unwrap_err();
    assert!(matches!(e, SppError::Pla(_)));
    assert!(std::error::Error::source(&e).is_some(), "parse errors keep their source");
}

/// `parse_pla` is the fallible front door to PLA input: the Ok side
/// matches `str::parse`, the Err side is an [`SppError`].
#[test]
fn parse_pla_matches_fromstr() {
    let text = ".i 2\n.o 1\n01 1\n10 1\n.e\n";
    let via_error_api = spp::core::parse_pla(text).unwrap();
    let via_fromstr: Pla = text.parse().unwrap();
    assert_eq!(via_error_api.output_fns(), via_fromstr.output_fns());
}
