//! # spp — Sum-of-Pseudoproducts logic minimization
//!
//! Facade crate re-exporting the whole `spp` workspace. See the individual
//! crates for details; the [`prelude`] brings the common types into scope.

#![forbid(unsafe_code)]

pub use spp_benchgen as benchgen;
pub use spp_boolfn as boolfn;
pub use spp_core as core;
pub use spp_cover as cover;
pub use spp_gf2 as gf2;
pub use spp_netlist as netlist;
pub use spp_sp as sp;

/// The most commonly used types and functions of the workspace.
pub mod prelude {
    pub use spp_boolfn::{BoolFn, Cube, Pla};
    pub use spp_gf2::{EchelonBasis, Gf2Vec};
}
