//! # spp — Sum-of-Pseudoproducts logic minimization
//!
//! Facade crate re-exporting the whole `spp` workspace. See the individual
//! crates for details; the [`prelude`] brings the common types into scope.
//!
//! The front door is the [`Minimizer`] session builder (and
//! [`MultiMinimizer`] for multi-output functions), which carries both the
//! algorithm configuration and the run control — deadline, cancellation
//! and progress events (the [`obs`] crate):
//!
//! ```
//! use std::time::Duration;
//! use spp::prelude::*;
//! use spp::Minimizer;
//!
//! let f = BoolFn::from_truth_fn(4, |x| x.count_ones() % 2 == 1);
//! let r = Minimizer::new(&f).deadline(Duration::from_secs(5)).run_exact();
//! assert!(r.form.check_realizes(&f).is_ok());
//! ```

#![forbid(unsafe_code)]

pub use spp_benchgen as benchgen;
pub use spp_boolfn as boolfn;
pub use spp_cache as cache;
pub use spp_core as core;
pub use spp_cover as cover;
pub use spp_gf2 as gf2;
pub use spp_kernels as kernels;
pub use spp_netlist as netlist;
pub use spp_obs as obs;
pub use spp_sp as sp;

pub use spp_core::{CacheConfig, CacheStats, Minimizer, MultiMinimizer, SppCache, SppError};
pub use spp_obs::{CancelToken, Event, EventSink, Outcome, RunCtx};

/// The most commonly used types and functions of the workspace.
pub mod prelude {
    pub use spp_boolfn::{BoolFn, Cube, Pla};
    pub use spp_core::{Minimizer, MultiMinimizer, Outcome, SppCache, SppError};
    pub use spp_gf2::{EchelonBasis, Gf2Vec};
}
