//! `spp` — command-line Sum-of-Pseudoproducts minimizer.
//!
//! ```text
//! spp minimize <file.pla> [options]     minimize every output of a PLA
//! spp bench <name> [options]            minimize a built-in benchmark
//! spp list                              list built-in benchmarks
//!
//! options:
//!   --sp               two-level SP minimization instead of SPP
//!   --2spp             restrict EXOR factors to two literals
//!   --heuristic <k>    use the SPP_k heuristic instead of the exact algorithm
//!   --multi            multi-output minimization with shared pseudoproducts
//!   --threads <n>      worker threads; wins over the SPP_THREADS env var
//!                      (default: SPP_THREADS, else all cores; 1 = the
//!                      sequential code path)
//!   --deadline-ms <t>  wall-clock budget for the whole run; on expiry every
//!                      phase unwinds to a valid best-so-far form
//!   --mem-budget-mb <m> memory-accounting budget: a hard cap of m MiB on the
//!                      pseudocube pools and covering matrix (soft cap m/2
//!                      degrades quality first). The default exact run then
//!                      descends a degradation ladder — exact → 2-SPP →
//!                      heuristic → SP — returning the first rung that fits,
//!                      always verified
//!   --cache-dir <dir>  persist verified results to <dir> and reuse them on
//!                      later runs; a second identical invocation answers
//!                      from the cache without re-minimizing
//!   --cache-mb <m>     in-memory result cache of m MiB (implied 64 MiB when
//!                      only --cache-dir is given); entries beyond the budget
//!                      are evicted least-recently-used
//!   --progress         print progress events (levels, covers) to stderr,
//!                      starting with the selected SIMD kernel backend
//!                      (override with SPP_KERNEL=scalar|avx2|neon|auto;
//!                      results are identical on every backend, only wall
//!                      time differs)
//!   --events-json <f>  append progress events to <f> as JSON lines
//!   --verilog <mod>    print a structural Verilog module
//!   --blif <model>     print a BLIF model
//!   --quiet            only print the summary line
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spp::boolfn::{BoolFn, Pla};
use spp::core::{
    CacheConfig, Event, EventSink, JsonLinesSink, Minimizer, MultiMinimizer, Outcome, SppCache,
    SppForm, SppOptions, StderrSink,
};
use spp::netlist::Netlist;
use spp::sp::minimize_sp;

struct Options {
    sp: bool,
    two_spp: bool,
    heuristic: Option<usize>,
    multi: bool,
    threads: Option<usize>,
    deadline_ms: Option<u64>,
    mem_budget_mb: Option<u64>,
    cache_dir: Option<String>,
    cache_mb: Option<u64>,
    progress: bool,
    events_json: Option<String>,
    verilog: Option<String>,
    blif: Option<String>,
    quiet: bool,
}

/// Forwards each event to both sinks (`--progress` + `--events-json`).
struct TeeSink(Arc<dyn EventSink>, Arc<dyn EventSink>);

impl EventSink for TeeSink {
    fn emit(&self, event: &Event) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: spp <minimize file.pla | bench name | list> \
         [--sp] [--2spp] [--heuristic k] [--multi] [--threads n] \
         [--deadline-ms t] [--mem-budget-mb m] [--cache-dir dir] \
         [--cache-mb m] [--progress] [--events-json file] \
         [--verilog module] [--blif model] [--quiet]\n\
         worker threads default to the SPP_THREADS env var, else all cores; \
         --threads wins over SPP_THREADS; \
         SPP_KERNEL=scalar|avx2|neon|auto picks the bitset kernel backend \
         (default: auto-detect; results are identical on every backend)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };

    let mut options = Options {
        sp: false,
        two_spp: false,
        heuristic: None,
        multi: false,
        threads: None,
        deadline_ms: None,
        mem_budget_mb: None,
        cache_dir: None,
        cache_mb: None,
        progress: false,
        events_json: None,
        verilog: None,
        blif: None,
        quiet: false,
    };
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sp" => options.sp = true,
            "--2spp" => options.two_spp = true,
            "--multi" => options.multi = true,
            "--quiet" => options.quiet = true,
            "--heuristic" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => options.heuristic = Some(k),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.threads = Some(n),
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => options.deadline_ms = Some(t),
                None => return usage(),
            },
            "--mem-budget-mb" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(m) if m > 0 => options.mem_budget_mb = Some(m),
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(d) => options.cache_dir = Some(d.clone()),
                None => return usage(),
            },
            "--cache-mb" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(m) if m > 0 => options.cache_mb = Some(m),
                _ => return usage(),
            },
            "--progress" => options.progress = true,
            "--events-json" => match it.next() {
                Some(f) => options.events_json = Some(f.clone()),
                None => return usage(),
            },
            "--verilog" => match it.next() {
                Some(m) => options.verilog = Some(m.clone()),
                None => return usage(),
            },
            "--blif" => match it.next() {
                Some(m) => options.blif = Some(m.clone()),
                None => return usage(),
            },
            other if !other.starts_with("--") => positional.push(other),
            _ => return usage(),
        }
    }

    match command.as_str() {
        "list" => {
            for name in spp::benchgen::registry::ALL_NAMES {
                let c = spp::benchgen::registry::circuit(name).expect("registered");
                println!("{c} — {}", c.description());
            }
            ExitCode::SUCCESS
        }
        "minimize" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("spp: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let pla: Pla = match text.parse() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("spp: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let labels: Vec<String> = (0..pla.num_outputs())
                .map(|j| {
                    pla.output_labels()
                        .get(j)
                        .cloned()
                        .unwrap_or_else(|| format!("f{j}"))
                })
                .collect();
            run(&pla.output_fns(), &labels, &options)
        }
        "bench" => {
            let Some(name) = positional.first() else {
                return usage();
            };
            let Some(circuit) = spp::benchgen::registry::circuit(name) else {
                eprintln!(
                    "spp: unknown benchmark {name:?}; try `spp list`"
                );
                return ExitCode::FAILURE;
            };
            let labels: Vec<String> =
                (0..circuit.outputs().len()).map(|j| format!("{name}[{j}]")).collect();
            run(circuit.outputs(), &labels, &options)
        }
        _ => usage(),
    }
}

/// The sink requested on the command line, if any.
fn build_sink(options: &Options) -> Result<Option<Arc<dyn EventSink>>, String> {
    let json: Option<Arc<dyn EventSink>> = match &options.events_json {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {path}: {e}"))?;
            Some(Arc::new(JsonLinesSink::new(file)))
        }
        None => None,
    };
    let stderr: Option<Arc<dyn EventSink>> =
        if options.progress { Some(Arc::new(StderrSink)) } else { None };
    Ok(match (json, stderr) {
        (Some(a), Some(b)) => Some(Arc::new(TeeSink(a, b))),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    })
}

/// The result cache requested on the command line: present when either
/// `--cache-dir` or `--cache-mb` is given. A bare `--cache-dir` keeps the
/// default in-memory budget; a bare `--cache-mb` caches in memory only.
fn build_cache(options: &Options) -> Option<SppCache> {
    if options.cache_dir.is_none() && options.cache_mb.is_none() {
        return None;
    }
    let mut config = CacheConfig::default();
    if let Some(m) = options.cache_mb {
        config = config.with_byte_budget(m.saturating_mul(1024 * 1024));
    }
    if let Some(dir) = &options.cache_dir {
        config = config.with_dir(dir);
    }
    Some(SppCache::new(config))
}

/// The (soft, hard) byte budgets encoded by `--mem-budget-mb m`: a hard
/// cap of `m` MiB and an advisory soft cap at half of it, so sessions
/// degrade (truncate generation, skip exact covering refinement) before
/// they are stopped.
fn mem_budgets(options: &Options) -> Option<(u64, u64)> {
    options.mem_budget_mb.map(|m| {
        let hard = m.saturating_mul(1024 * 1024);
        (hard / 2, hard)
    })
}

/// The status suffix of a summary line: silent on an optimal complete run
/// (keeping the historical output stable), `[upper bound]` on budget
/// truncation, and the outcome name when a deadline or cancellation cut
/// the run short.
fn status_suffix(outcome: Outcome, optimal: bool) -> String {
    match outcome {
        Outcome::Completed if optimal => String::new(),
        Outcome::Completed => " [upper bound]".to_owned(),
        other => format!(" [{}]", other.as_str()),
    }
}

fn run(outputs: &[BoolFn], labels: &[String], options: &Options) -> ExitCode {
    let spp_options = SppOptions::default();
    let sink = match build_sink(options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spp: {e}");
            return ExitCode::FAILURE;
        }
    };
    if options.progress {
        eprintln!("kernel backend: {}", spp::kernels::active().name());
    }
    // One absolute deadline for the whole invocation, shared by every
    // output's session.
    let deadline_at =
        options.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    // One cache for the whole invocation too, so identical outputs of a
    // multi-output PLA answer each other within a single run.
    let cache = build_cache(options);
    fn configure<'f>(
        f: &'f BoolFn,
        spp_options: &SppOptions,
        options: &Options,
        deadline_at: Option<Instant>,
        sink: &Option<Arc<dyn EventSink>>,
        cache: &Option<SppCache>,
    ) -> Minimizer<'f> {
        let mut m = Minimizer::new(f).options(spp_options.clone());
        if let Some(n) = options.threads {
            m = m.threads(n);
        }
        if let Some(at) = deadline_at {
            m = m.deadline_at(at);
        }
        if let Some((soft, hard)) = mem_budgets(options) {
            m = m.mem_budget(Some(soft), Some(hard));
        }
        if let Some(sink) = sink {
            m = m.on_event(sink.clone());
        }
        if let Some(cache) = cache {
            m = m.cache(cache.clone());
        }
        m
    }
    let mut forms: Vec<SppForm> = Vec::new();

    if options.multi {
        let mut session = MultiMinimizer::new(outputs).options(spp_options.clone());
        if let Some(n) = options.threads {
            session = session.threads(n);
        }
        if let Some(ms) = options.deadline_ms {
            session = session.deadline(Duration::from_millis(ms));
        }
        if let Some((soft, hard)) = mem_budgets(options) {
            session = session.mem_budget(Some(soft), Some(hard));
        }
        if let Some(sink) = &sink {
            session = session.on_event(sink.clone());
        }
        if let Some(cache) = &cache {
            session = session.cache(cache.clone());
        }
        let r = match session.run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("spp: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (form, f) in r.forms.iter().zip(outputs) {
            if let Err(e) = form.check_realizes(f) {
                eprintln!("spp: internal verification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "multi-output SPP: {} shared pseudoproducts, {} shared literals \
             ({} counted per output){}",
            r.shared_terms.len(),
            r.shared_literal_count,
            r.separate_literal_count(),
            status_suffix(r.outcome, r.optimal)
        );
        forms = r.forms;
    } else {
        for (f, label) in outputs.iter().zip(labels) {
            let session = configure(f, &spp_options, options, deadline_at, &sink, &cache);
            let (form, tag, optimal, outcome) = if options.sp {
                // SP covering honours --threads too: parallelism rides
                // inside the covering limits.
                let mut limits = spp_options.cover_limits.clone();
                if let Some(n) = options.threads {
                    limits = limits.with_parallelism(spp::cover::Parallelism::fixed(n));
                }
                let r = minimize_sp(f, &limits);
                let form = SppForm::new(
                    f.num_vars(),
                    r.form.cubes().iter().map(spp::core::Pseudocube::from_cube).collect(),
                );
                (form, "SP", r.optimal, Outcome::Completed)
            } else if options.two_spp {
                match session.run_restricted(2) {
                    Ok(r) => (r.form.clone(), "2-SPP", r.optimal, r.outcome),
                    Err(e) => {
                        eprintln!("spp: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if let Some(k) = options.heuristic {
                let k = k.min(f.num_vars().saturating_sub(1));
                match session.run_heuristic(k) {
                    Ok(r) => (r.form.clone(), "SPP_k", r.optimal, r.outcome),
                    Err(e) => {
                        eprintln!("spp: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if options.mem_budget_mb.is_some() {
                // Under a memory budget the exact run is the top rung of
                // the degradation ladder; name the rung that answered.
                let r = session.run_governed();
                let tag = match r.rung {
                    spp::core::Rung::Exact => "SPP",
                    spp::core::Rung::RestrictedExact => "SPP (2-SPP rung)",
                    spp::core::Rung::Heuristic => "SPP (heuristic rung)",
                    spp::core::Rung::Sop => "SPP (SP fallback)",
                };
                (r.form.clone(), tag, r.optimal, r.outcome)
            } else {
                let r = session.run_exact();
                (r.form.clone(), "SPP", r.optimal, r.outcome)
            };
            if let Err(e) = form.check_realizes(f) {
                eprintln!("spp: internal verification failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "{label}: {tag} {} literals, {} terms{}",
                form.literal_count(),
                form.num_pseudoproducts(),
                status_suffix(outcome, optimal)
            );
            if !options.quiet {
                println!("  {form}");
            }
            forms.push(form);
        }
    }

    if let Some(cache) = &cache {
        println!("cache: {}", cache.stats());
    }

    let net = Netlist::from_spp_forms(&forms);
    if !options.quiet {
        println!("{net}");
    }
    if let Some(module) = &options.verilog {
        print!("{}", net.to_verilog(module));
    }
    if let Some(model) = &options.blif {
        print!("{}", net.to_blif(model));
    }
    ExitCode::SUCCESS
}
