//! `spp` — command-line Sum-of-Pseudoproducts minimizer.
//!
//! ```text
//! spp minimize <file.pla> [options]     minimize every output of a PLA
//! spp bench <name> [options]            minimize a built-in benchmark
//! spp list                              list built-in benchmarks
//!
//! options:
//!   --sp              two-level SP minimization instead of SPP
//!   --2spp            restrict EXOR factors to two literals
//!   --heuristic <k>   use the SPP_k heuristic instead of the exact algorithm
//!   --multi           multi-output minimization with shared pseudoproducts
//!   --threads <n>     worker threads (default: SPP_THREADS env var, else
//!                     all cores; 1 = the sequential code path)
//!   --verilog <mod>   print a structural Verilog module
//!   --blif <model>    print a BLIF model
//!   --quiet           only print the summary line
//! ```

use std::process::ExitCode;

use spp::boolfn::{BoolFn, Pla};
use spp::core::{
    minimize_2spp, minimize_spp_exact, minimize_spp_heuristic, minimize_spp_multi, SppForm,
    SppOptions,
};
use spp::netlist::Netlist;
use spp::sp::minimize_sp;

struct Options {
    sp: bool,
    two_spp: bool,
    heuristic: Option<usize>,
    multi: bool,
    threads: Option<usize>,
    verilog: Option<String>,
    blif: Option<String>,
    quiet: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: spp <minimize file.pla | bench name | list> \
         [--sp] [--2spp] [--heuristic k] [--multi] [--threads n] \
         [--verilog module] [--blif model] [--quiet]\n\
         worker threads default to the SPP_THREADS env var, else all cores"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };

    let mut options = Options {
        sp: false,
        two_spp: false,
        heuristic: None,
        multi: false,
        threads: None,
        verilog: None,
        blif: None,
        quiet: false,
    };
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sp" => options.sp = true,
            "--2spp" => options.two_spp = true,
            "--multi" => options.multi = true,
            "--quiet" => options.quiet = true,
            "--heuristic" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => options.heuristic = Some(k),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.threads = Some(n),
                None => return usage(),
            },
            "--verilog" => match it.next() {
                Some(m) => options.verilog = Some(m.clone()),
                None => return usage(),
            },
            "--blif" => match it.next() {
                Some(m) => options.blif = Some(m.clone()),
                None => return usage(),
            },
            other if !other.starts_with("--") => positional.push(other),
            _ => return usage(),
        }
    }

    match command.as_str() {
        "list" => {
            for name in spp::benchgen::registry::ALL_NAMES {
                let c = spp::benchgen::registry::circuit(name).expect("registered");
                println!("{c} — {}", c.description());
            }
            ExitCode::SUCCESS
        }
        "minimize" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("spp: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let pla: Pla = match text.parse() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("spp: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let labels: Vec<String> = (0..pla.num_outputs())
                .map(|j| {
                    pla.output_labels()
                        .get(j)
                        .cloned()
                        .unwrap_or_else(|| format!("f{j}"))
                })
                .collect();
            run(&pla.output_fns(), &labels, &options)
        }
        "bench" => {
            let Some(name) = positional.first() else {
                return usage();
            };
            let Some(circuit) = spp::benchgen::registry::circuit(name) else {
                eprintln!(
                    "spp: unknown benchmark {name:?}; try `spp list`"
                );
                return ExitCode::FAILURE;
            };
            let labels: Vec<String> =
                (0..circuit.outputs().len()).map(|j| format!("{name}[{j}]")).collect();
            run(circuit.outputs(), &labels, &options)
        }
        _ => usage(),
    }
}

fn run(outputs: &[BoolFn], labels: &[String], options: &Options) -> ExitCode {
    let mut spp_options = SppOptions::default();
    if let Some(n) = options.threads {
        spp_options.gen_limits.parallelism = spp::core::Parallelism::fixed(n);
    }
    let mut forms: Vec<SppForm> = Vec::new();

    if options.multi {
        let r = minimize_spp_multi(outputs, &spp_options);
        for (form, f) in r.forms.iter().zip(outputs) {
            if let Err(e) = form.check_realizes(f) {
                eprintln!("spp: internal verification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "multi-output SPP: {} shared pseudoproducts, {} shared literals \
             ({} counted per output){}",
            r.shared_terms.len(),
            r.shared_literal_count,
            r.separate_literal_count(),
            if r.optimal { "" } else { " [upper bound]" }
        );
        forms = r.forms;
    } else {
        for (f, label) in outputs.iter().zip(labels) {
            let (form, tag, optimal) = if options.sp {
                let r = minimize_sp(f, &spp_options.cover_limits);
                let form = SppForm::new(
                    f.num_vars(),
                    r.form.cubes().iter().map(spp::core::Pseudocube::from_cube).collect(),
                );
                (form, "SP", r.optimal)
            } else if options.two_spp {
                let r = minimize_2spp(f, &spp_options);
                (r.form.clone(), "2-SPP", r.optimal)
            } else if let Some(k) = options.heuristic {
                let k = k.min(f.num_vars().saturating_sub(1));
                let r = minimize_spp_heuristic(f, k, &spp_options);
                (r.form.clone(), "SPP_k", r.optimal)
            } else {
                let r = minimize_spp_exact(f, &spp_options);
                (r.form.clone(), "SPP", r.optimal)
            };
            if let Err(e) = form.check_realizes(f) {
                eprintln!("spp: internal verification failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "{label}: {tag} {} literals, {} terms{}",
                form.literal_count(),
                form.num_pseudoproducts(),
                if optimal { "" } else { " [upper bound]" }
            );
            if !options.quiet {
                println!("  {form}");
            }
            forms.push(form);
        }
    }

    let net = Netlist::from_spp_forms(&forms);
    if !options.quiet {
        println!("{net}");
    }
    if let Some(module) = &options.verilog {
        print!("{}", net.to_verilog(module));
    }
    if let Some(model) = &options.blif {
        print!("{}", net.to_blif(model));
    }
    ExitCode::SUCCESS
}
